// Quickstart: allocate memory on one NUMA node, mark it
// Migrate-on-next-touch, move the thread, and watch the pages follow it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"numamig"
)

func main() {
	sys := numamig.New(numamig.Config{}) // the paper's 4x4 Opteron host

	err := sys.Run(func(t *numamig.Task) {
		// 16 MB buffer, first-touched on node 0 (we start on core 0).
		buf := numamig.MustAlloc(t, 16<<20, numamig.FirstTouch())
		if err := buf.Prefault(t); err != nil {
			panic(err)
		}
		hist, _ := buf.NodeHistogram(t)
		fmt.Printf("t=%-9v allocated:   pages by node %v\n", t.P.Now(), hist)

		// Mark migrate-on-next-touch (one madvise call).
		nt := sys.NewKernelNT()
		if _, err := nt.Mark(t, buf.Region()); err != nil {
			panic(err)
		}

		// The scheduler moves us to node 2; no data was copied yet.
		t.MigrateTo(8)
		fmt.Printf("t=%-9v thread now on core %d (node %d); nothing migrated yet\n",
			t.P.Now(), t.Core, t.Node())

		// First touch pulls every page to the local node, page by page,
		// inside the page-fault handler.
		start := t.P.Now()
		if err := buf.Access(t, numamig.Stream, false); err != nil {
			panic(err)
		}
		d := t.P.Now() - start
		hist, _ = buf.NodeHistogram(t)
		fmt.Printf("t=%-9v after touch: pages by node %v\n", t.P.Now(), hist)
		fmt.Printf("lazy migration moved %.0f MB at %.0f MB/s (simulated)\n",
			float64(buf.Size)/1e6, float64(buf.Size)/d.Seconds()/1e6)
	})
	if err != nil {
		panic(err)
	}
	st := sys.Stats()
	fmt.Printf("kernel: %d faults, %d next-touch migrations, %d TLB shootdowns\n",
		st.Faults, st.NTMigrations, st.TLBShootdowns)
}
