// amr models the paper's motivating application class: adaptive mesh
// refinement. A 2D domain of patches is computed in phases; after each
// phase some patches refine (more work) and others coarsen, so the
// load balancer reassigns patches to threads. With a static placement
// the reassigned patches keep being accessed remotely; with the
// next-touch manager each rebalanced thread's workset follows it
// automatically — no affinity bookkeeping anywhere.
//
//	go run ./examples/amr
package main

import (
	"fmt"

	"numamig"
)

const (
	patchesX   = 8
	patchesY   = 8
	patchBytes = 1 << 20 // 1 MB per patch
	phases     = 6
)

type patch struct {
	buf  *numamig.Buffer
	work float64 // relative compute weight, changes as the mesh refines
}

func main() {
	for _, lazy := range []bool{false, true} {
		d, migrated := run(lazy)
		name := "static placement"
		if lazy {
			name = "next-touch rebalancing"
		}
		fmt.Printf("%-24s total %8.2f ms  (pages migrated: %d)\n",
			name, d.Millis(), migrated)
	}
}

func run(lazy bool) (numamig.Time, uint64) {
	sys := numamig.New(numamig.Config{})
	team := sys.TeamAll()
	var nt *numamig.KernelNT
	if lazy {
		nt = sys.NewKernelNT()
	}
	var dur numamig.Time

	err := sys.Run(func(master *numamig.Task) {
		rng := sys.Eng.Rand
		// Build the mesh: patches first-touched by their initial owner
		// thread (ideal initial distribution).
		patches := make([]*patch, patchesX*patchesY)
		owners := make([]int, len(patches))
		for i := range patches {
			owners[i] = i % team.Size()
			patches[i] = &patch{work: 1}
		}
		team.Parallel(master, func(t *numamig.Task, tid int) {
			for i := range patches {
				if owners[i] != tid {
					continue
				}
				b := numamig.MustAlloc(t, patchBytes, numamig.FirstTouch())
				if err := b.Prefault(t); err != nil {
					panic(err)
				}
				patches[i].buf = b
			}
		})

		start := master.P.Now()
		for phase := 0; phase < phases; phase++ {
			// Compute phase: each thread sweeps its patches; cost =
			// work * traffic + flops.
			team.Parallel(master, func(t *numamig.Task, tid int) {
				for i, p := range patches {
					if owners[i] != tid {
						continue
					}
					sweeps := int(p.work)
					if sweeps < 1 {
						sweeps = 1
					}
					for s := 0; s < sweeps; s++ {
						if err := p.buf.Access(t, numamig.Blocked, true); err != nil {
							panic(err)
						}
						t.P.Sleep(numamig.FromSeconds(p.work * 2e-4))
					}
				}
			})
			// Refinement: work changes, so rebalance greedily.
			for _, p := range patches {
				switch rng.Intn(3) {
				case 0:
					p.work *= 2
				case 1:
					p.work /= 2
					if p.work < 1 {
						p.work = 1
					}
				}
			}
			rebalance(patches, owners, team.Size())
			// With the lazy policy, mark everything; only pages whose
			// new owner sits on another node actually migrate, on touch.
			if lazy {
				team.Parallel(master, func(t *numamig.Task, tid int) {
					for i, p := range patches {
						if owners[i] != tid {
							continue
						}
						if _, err := nt.Mark(t, p.buf.Region()); err != nil {
							panic(err)
						}
					}
				})
			}
		}
		dur = master.P.Now() - start
	})
	if err != nil {
		panic(err)
	}
	return dur, sys.Stats().NTMigrations
}

// rebalance assigns patches to threads by descending work (longest
// processing time first).
func rebalance(patches []*patch, owners []int, threads int) {
	type item struct {
		idx  int
		work float64
	}
	items := make([]item, len(patches))
	for i, p := range patches {
		items[i] = item{i, p.work}
	}
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if items[j].work > items[i].work {
				items[i], items[j] = items[j], items[i]
			}
		}
	}
	loads := make([]float64, threads)
	for _, it := range items {
		best := 0
		for t := 1; t < threads; t++ {
			if loads[t] < loads[best] {
				best = t
			}
		}
		owners[it.idx] = best
		loads[best] += it.work
	}
}
