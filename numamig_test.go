package numamig

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys := New(Config{})
	var hist []int
	err := sys.Run(func(tk *Task) {
		buf := MustAlloc(tk, 1<<20, Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		nt := sys.NewKernelNT()
		if _, err := nt.Mark(tk, buf.Region()); err != nil {
			t.Fatal(err)
		}
		tk.MigrateTo(12) // node 3
		if err := buf.Access(tk, Stream, false); err != nil {
			t.Fatal(err)
		}
		h, absent := buf.NodeHistogram(tk)
		if absent != 0 {
			t.Fatalf("absent pages: %d", absent)
		}
		hist = h
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist[3] != 256 || hist[0] != 0 {
		t.Fatalf("pages did not follow thread: %v", hist)
	}
	if sys.Stats().NTMigrations != 256 {
		t.Fatalf("NT migrations = %d", sys.Stats().NTMigrations)
	}
	if sys.Now() <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestConfigDefaultsToPaperHost(t *testing.T) {
	sys := New(Config{})
	if sys.Machine.NumNodes() != 4 || sys.Machine.NumCores() != 16 {
		t.Fatalf("default machine = %d nodes %d cores", sys.Machine.NumNodes(), sys.Machine.NumCores())
	}
	if sys.Machine.Nodes[0].MemBytes != 8<<30 || sys.Machine.Nodes[0].L3Bytes != 2<<20 {
		t.Fatal("default memory/L3 wrong")
	}
}

func TestCustomMachineShape(t *testing.T) {
	sys := New(Config{Nodes: 2, CoresPerNode: 2, MemPerNode: 1 << 30})
	if sys.Machine.NumNodes() != 2 || sys.Machine.NumCores() != 4 {
		t.Fatal("custom shape ignored")
	}
}

func TestUserNTViaPublicAPI(t *testing.T) {
	sys := New(Config{})
	u := sys.NewUserNT(true)
	err := sys.Run(func(tk *Task) {
		buf := MustAlloc(tk, 64*PageSize, Bind(1))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		if err := u.Mark(tk, buf.Region()); err != nil {
			t.Fatal(err)
		}
		tk.MigrateTo(8) // node 2
		if err := buf.Access(tk, Blocked, true); err != nil {
			t.Fatal(err)
		}
		h, _ := buf.NodeHistogram(tk)
		if h[2] != 64 {
			t.Fatalf("user NT histogram: %v", h)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.Stats.Migrations != 1 {
		t.Fatalf("user NT migrations = %d", u.Stats.Migrations)
	}
}

func TestTeamsViaPublicAPI(t *testing.T) {
	sys := New(Config{})
	counts := map[NodeID]int{}
	err := sys.Run(func(tk *Task) {
		team := sys.TeamOfNode(2)
		if team.Size() != 4 {
			t.Fatalf("node team size = %d", team.Size())
		}
		team.Parallel(tk, func(w *Task, tid int) {
			counts[w.Node()]++
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[2] != 4 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestManagerViaPublicAPI(t *testing.T) {
	sys := New(Config{})
	m := sys.NewManager(Sync, true)
	err := sys.Run(func(tk *Task) {
		buf := MustAlloc(tk, 32*PageSize, Bind(0))
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		m.Attach(tk, buf.Region())
		if err := m.MoveThread(tk, 4); err != nil { // node 1
			t.Fatal(err)
		}
		h, _ := buf.NodeHistogram(tk)
		if h[1] != 32 {
			t.Fatalf("sync manager histogram: %v", h)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBufferFreeAndString(t *testing.T) {
	sys := New(Config{})
	err := sys.Run(func(tk *Task) {
		buf := MustAlloc(tk, 8*PageSize, FirstTouch())
		if buf.Pages() != 8 {
			t.Fatalf("pages = %d", buf.Pages())
		}
		if buf.String() == "" {
			t.Fatal("empty string")
		}
		if err := buf.Prefault(tk); err != nil {
			t.Fatal(err)
		}
		if err := buf.Free(tk); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Time {
		sys := New(Config{Seed: 99})
		_ = sys.Run(func(tk *Task) {
			buf := MustAlloc(tk, 2<<20, Interleave(0, 1, 2, 3))
			_ = buf.Prefault(tk)
			nt := sys.NewKernelNT()
			_, _ = nt.Mark(tk, buf.Region())
			tk.MigrateTo(5)
			_ = buf.Access(tk, Blocked, false)
		})
		return sys.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
